//! Baseline: the surrogate-architecture framework of Blumenthal et al.
//! (the paper's Related Work B, §III.B).
//!
//! Each sensor node is represented by a *surrogate* object on a capable
//! surrogate host; the node streams its samples to the surrogate over the
//! radio, and applications query the surrogates. The paper's critique:
//! making the resource-poor sensor "a direct part of \[the\] network" means
//! it transmits continuously whether anyone is listening or not — the
//! energy/traffic trade-off B7 measures against SenSORCER's on-demand
//! federated reads.

use std::collections::BTreeMap;

use sensorcer_sensors::probe::SensorProbe;
use sensorcer_sim::env::{Env, RepeatHandle, ServiceId};
use sensorcer_sim::time::{SimDuration, SimTime};
use sensorcer_sim::topology::{HostId, NetError};
use sensorcer_sim::wire::ProtocolStack;

/// Bytes per streamed sample over the constrained radio (compact stack).
const SAMPLE_BYTES: usize = 12;
const QUERY_BYTES: usize = 24;
const RECORD_BYTES: usize = 40;

/// The surrogate host service: one cached record per represented node.
#[derive(Debug, Default)]
pub struct SurrogateHost {
    latest: BTreeMap<String, (f64, SimTime)>,
    samples_received: u64,
}

impl SurrogateHost {
    pub fn samples_received(&self) -> u64 {
        self.samples_received
    }

    pub fn node_count(&self) -> usize {
        self.latest.len()
    }
}

/// Deploy the surrogate host service.
pub fn deploy_surrogate_host(env: &mut Env, host: HostId, name: &str) -> ServiceId {
    env.deploy(host, name, SurrogateHost::default())
}

/// Attach a sensor node: the mote samples its probe every `period` and
/// streams the reading to its surrogate (compact radio stack,
/// fire-and-forget — lost samples are simply missing). Returns the stream
/// control handle.
pub fn attach_node(
    env: &mut Env,
    mote: HostId,
    node_name: &str,
    mut probe: Box<dyn SensorProbe>,
    surrogate: ServiceId,
    period: SimDuration,
) -> RepeatHandle {
    let name = node_name.to_string();
    env.schedule_every(period, period, move |env| {
        if env.service_host(surrogate).is_none() {
            return false;
        }
        if !env.topo.is_alive(mote) {
            // A crashed mote streams nothing but resumes when restarted.
            return true;
        }
        let Ok(m) = probe.sample(env.now()) else {
            return true;
        };
        probe.charge_tx(SAMPLE_BYTES);
        let Some(surrogate_host) = env.service_host(surrogate) else {
            return false;
        };
        if env
            .send_oneway(mote, surrogate_host, ProtocolStack::Compact, SAMPLE_BYTES)
            .is_ok()
        {
            let at = m.at;
            let value = m.value;
            let name = name.clone();
            let _ = env.with_service(surrogate, move |_e, s: &mut SurrogateHost| {
                s.latest.insert(name, (value, at));
                s.samples_received += 1;
            });
        }
        true
    })
}

/// Application query: all cached readings not older than `max_age`.
pub fn query_fresh(
    env: &mut Env,
    from: HostId,
    surrogate: ServiceId,
    max_age: SimDuration,
) -> Result<Vec<(String, f64)>, NetError> {
    env.call(
        from,
        surrogate,
        ProtocolStack::Tcp,
        QUERY_BYTES,
        move |env, s: &mut SurrogateHost| {
            let now = env.now();
            let fresh: Vec<(String, f64)> = s
                .latest
                .iter()
                .filter(|(_, (_, at))| now.since(*at) <= max_age)
                .map(|(n, (v, _))| (n.clone(), *v))
                .collect();
            let bytes = (fresh.len() * RECORD_BYTES).max(8);
            (fresh, bytes)
        },
    )
}

/// Network-wide average over fresh cached data.
pub fn network_average(
    env: &mut Env,
    from: HostId,
    surrogate: ServiceId,
    max_age: SimDuration,
) -> Option<f64> {
    let readings = query_fresh(env, from, surrogate, max_age).ok()?;
    if readings.is_empty() {
        None
    } else {
        Some(readings.iter().map(|(_, v)| v).sum::<f64>() / readings.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sensors::prelude::*;
    use sensorcer_sim::prelude::*;

    fn setup(n: usize) -> (Env, HostId, ServiceId, Vec<HostId>) {
        let mut env = Env::with_seed(1);
        let server = env.add_host("surrogate-host", HostKind::Server);
        let client = env.add_host("client", HostKind::Workstation);
        let surrogate = deploy_surrogate_host(&mut env, server, "Surrogate Host");
        let mut motes = Vec::new();
        for i in 0..n {
            let mote = env.add_host(format!("mote{i}"), HostKind::SensorMote);
            attach_node(
                &mut env,
                mote,
                &format!("node{i}"),
                Box::new(ScriptedProbe::new(
                    vec![10.0 * (i + 1) as f64],
                    Unit::Celsius,
                )),
                surrogate,
                SimDuration::from_secs(1),
            );
            motes.push(mote);
        }
        (env, client, surrogate, motes)
    }

    #[test]
    fn nodes_stream_and_queries_see_fresh_data() {
        let (mut env, client, surrogate, _motes) = setup(3);
        env.run_for(SimDuration::from_secs(5));
        let readings = query_fresh(&mut env, client, surrogate, SimDuration::from_secs(3)).unwrap();
        assert_eq!(readings.len(), 3);
        let avg = network_average(&mut env, client, surrogate, SimDuration::from_secs(3));
        assert_eq!(avg, Some(20.0));
    }

    #[test]
    fn stale_data_is_filtered_by_age() {
        let (mut env, client, surrogate, motes) = setup(2);
        env.run_for(SimDuration::from_secs(3));
        env.crash_host(motes[0]);
        env.run_for(SimDuration::from_secs(10));
        let readings = query_fresh(&mut env, client, surrogate, SimDuration::from_secs(3)).unwrap();
        assert_eq!(readings.len(), 1, "only the live node is fresh");
        assert_eq!(readings[0].0, "node1");
    }

    #[test]
    fn crashed_mote_resumes_streaming_on_restart() {
        let (mut env, client, surrogate, motes) = setup(1);
        env.run_for(SimDuration::from_secs(3));
        env.crash_host(motes[0]);
        env.run_for(SimDuration::from_secs(10));
        env.restart_host(motes[0]);
        env.run_for(SimDuration::from_secs(3));
        let readings = query_fresh(&mut env, client, surrogate, SimDuration::from_secs(2)).unwrap();
        assert_eq!(readings.len(), 1);
    }

    #[test]
    fn streaming_burns_bytes_even_with_no_queries() {
        let (mut env, _client, surrogate, _motes) = setup(4);
        let before = env.metrics.get(metric_keys::BYTES_WIRE);
        env.run_for(SimDuration::from_secs(60));
        let burned = env.metrics.delta(metric_keys::BYTES_WIRE, before);
        // ~4 nodes × ~55 effective samples × 30 bytes/frame (periods drift
        // slightly past 1 s because the radio hop consumes virtual time).
        assert!(
            burned > 5_000,
            "continuous streaming: {burned} bytes with zero queries"
        );
        env.with_service(surrogate, |_e, s: &mut SurrogateHost| {
            assert!(s.samples_received() > 150);
            assert_eq!(s.node_count(), 4);
        })
        .unwrap();
    }

    #[test]
    fn queries_are_cheap_and_fast() {
        let (mut env, client, surrogate, _motes) = setup(8);
        env.run_for(SimDuration::from_secs(3));
        let t0 = env.now();
        query_fresh(&mut env, client, surrogate, SimDuration::from_secs(3)).unwrap();
        let dt = env.now() - t0;
        // One server exchange regardless of node count.
        assert!(dt < SimDuration::from_millis(10), "{dt}");
    }
}
