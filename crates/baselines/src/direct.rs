//! Baseline: direct per-sensor IP polling.
//!
//! The strawman the paper's motivation attacks (§II.1–2): a client that
//! "continuously collect\[s\] data directly from \[a\] large number of
//! individual sensors", one TCP/UDP exchange per sensor per round, with a
//! static list of sensor addresses (no discovery, no leases, no
//! federation). B1 and B2 compare this against SenSORCER aggregation.

use sensorcer_sensors::probe::SensorProbe;
use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::topology::{HostId, NetError};
use sensorcer_sim::wire::ProtocolStack;

/// Wire sizes of the minimal polling protocol: a read request and a
/// response carrying one float, a timestamp and a status byte.
pub const READ_REQUEST_BYTES: usize = 16;
pub const READ_RESPONSE_BYTES: usize = 17;

/// A bare sensor endpoint: answers read requests, nothing else.
pub struct DirectSensorServer {
    name: String,
    probe: Box<dyn SensorProbe>,
    reads: u64,
}

impl DirectSensorServer {
    pub fn reads(&self) -> u64 {
        self.reads
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Deploy a direct sensor endpoint on a mote host.
pub fn deploy_direct_sensor(
    env: &mut Env,
    host: HostId,
    name: &str,
    probe: Box<dyn SensorProbe>,
) -> ServiceId {
    env.deploy(
        host,
        name,
        DirectSensorServer {
            name: name.to_string(),
            probe,
            reads: 0,
        },
    )
}

/// The polling client: a static address list, polled one by one.
pub struct DirectClient {
    pub host: HostId,
    pub stack: ProtocolStack,
    /// Static topology: addresses configured by hand (§II.2's complaint).
    pub sensors: Vec<ServiceId>,
}

impl DirectClient {
    pub fn new(host: HostId, stack: ProtocolStack) -> DirectClient {
        DirectClient {
            host,
            stack,
            sensors: Vec::new(),
        }
    }

    /// Read one sensor.
    pub fn read(&self, env: &mut Env, sensor: ServiceId) -> Result<f64, NetError> {
        env.call(
            self.host,
            sensor,
            self.stack,
            READ_REQUEST_BYTES,
            |env, s: &mut DirectSensorServer| {
                s.reads += 1;
                let value = s.probe.sample(env.now()).map(|m| m.value);
                // Transmitting the response costs the mote energy.
                s.probe.charge_tx(READ_RESPONSE_BYTES);
                (value, READ_RESPONSE_BYTES)
            },
        )?
        .map_err(|_| NetError::Timeout)
    }

    /// Poll every configured sensor sequentially (the client has one
    /// socket loop); unreachable sensors cost the full timeout each.
    pub fn read_all(&self, env: &mut Env) -> Vec<Result<f64, NetError>> {
        self.sensors.iter().map(|s| self.read(env, *s)).collect()
    }

    /// Network-wide average computed client-side from a full poll. Errors
    /// are skipped; `None` when nothing answered.
    pub fn network_average(&self, env: &mut Env) -> Option<f64> {
        let values: Vec<f64> = self.read_all(env).into_iter().flatten().collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sensors::prelude::*;
    use sensorcer_sim::prelude::*;

    fn setup(n: usize, values: &[f64]) -> (Env, DirectClient) {
        let mut env = Env::with_seed(1);
        let client_host = env.add_host("client", HostKind::Workstation);
        let mut client = DirectClient::new(client_host, ProtocolStack::Tcp);
        for i in 0..n {
            let mote = env.add_host(format!("mote{i}"), HostKind::SensorMote);
            let svc = deploy_direct_sensor(
                &mut env,
                mote,
                &format!("s{i}"),
                Box::new(ScriptedProbe::new(
                    vec![values[i % values.len()]],
                    Unit::Celsius,
                )),
            );
            client.sensors.push(svc);
        }
        (env, client)
    }

    #[test]
    fn polls_every_sensor() {
        let (mut env, client) = setup(3, &[10.0, 20.0, 30.0]);
        let readings = client.read_all(&mut env);
        assert_eq!(readings.len(), 3);
        assert_eq!(readings[0].as_ref().unwrap(), &10.0);
        assert_eq!(client.network_average(&mut env), Some(20.0));
    }

    #[test]
    fn dead_sensor_costs_timeout_and_is_skipped() {
        let (mut env, client) = setup(3, &[10.0, 20.0, 30.0]);
        let dead_host = env.service_host(client.sensors[1]).unwrap();
        env.crash_host(dead_host);
        let t0 = env.now();
        let avg = client.network_average(&mut env).unwrap();
        assert_eq!(avg, 20.0, "(10+30)/2");
        assert!(
            env.now() - t0 >= env.config.call_timeout,
            "the static poller burns a timeout on the dead sensor"
        );
    }

    #[test]
    fn per_round_wire_bytes_scale_linearly() {
        let (mut env, client) = setup(8, &[20.0]);
        let before = env.metrics.get(metric_keys::BYTES_WIRE);
        client.read_all(&mut env);
        let one_round = env.metrics.delta(metric_keys::BYTES_WIRE, before);
        let before = env.metrics.get(metric_keys::BYTES_WIRE);
        client.read_all(&mut env);
        client.read_all(&mut env);
        let two_rounds = env.metrics.delta(metric_keys::BYTES_WIRE, before);
        // Proportional up to stochastic radio retransmissions.
        let ratio = two_rounds as f64 / one_round as f64;
        assert!((1.8..=2.2).contains(&ratio), "ratio {ratio}");
        // Every exchange pays headers many times the payload.
        assert!(one_round as usize > 8 * (READ_REQUEST_BYTES + READ_RESPONSE_BYTES) * 3);
    }

    #[test]
    fn polling_takes_time_proportional_to_sensor_count() {
        let (mut env_small, small) = setup(4, &[20.0]);
        let t0 = env_small.now();
        small.read_all(&mut env_small);
        let small_time = env_small.now() - t0;

        let (mut env_big, big) = setup(16, &[20.0]);
        let t0 = env_big.now();
        big.read_all(&mut env_big);
        let big_time = env_big.now() - t0;
        assert!(
            big_time.as_nanos() > small_time.as_nanos() * 3,
            "sequential polling scales linearly: {small_time} vs {big_time}"
        );
    }
}
