//! Baseline: the three-level Jini clustering framework of Bertocco et al.
//! (the paper's Related Work A, §III.A).
//!
//! Architecture: sensors attach to a **Terminal Communication Interface**
//! (TCI) which "is the only component communicating with sensors";
//! **Sensor Service Providers** (SSPs) contact TCIs and arrange their data
//! "in a more structured way"; the **Application Service Provider** (ASP)
//! "is the only point of access to the system". The paper's critique —
//! the TCI "is burdened with … many responsibilities" and the stack only
//! does data collection (no compute expressions, no provisioning) — is
//! exactly what B7 measures: per-host byte concentration and rigid
//! aggregation.

use sensorcer_sensors::probe::SensorProbe;
use sensorcer_sim::env::{Env, ServiceId};
use sensorcer_sim::time::SimDuration;
use sensorcer_sim::topology::{HostId, NetError};
use sensorcer_sim::wire::ProtocolStack;

/// Per-reading record moved up the stack: name + value + timestamp.
const RECORD_BYTES: usize = 40;
const REQUEST_BYTES: usize = 24;

/// Level 1: the TCI virtualizes access to its attached sensors.
pub struct Tci {
    pub name: String,
    /// Locally attached probes (serial/GPIB in the original); sampling is
    /// a local operation on the TCI host.
    probes: Vec<(String, Box<dyn SensorProbe>)>,
    reads_served: u64,
}

impl Tci {
    pub fn reads_served(&self) -> u64 {
        self.reads_served
    }

    /// Sample every attached sensor (the consistent interface the TCI
    /// offers regardless of sensor kind).
    fn collect(&mut self, env: &mut Env) -> Vec<(String, f64)> {
        self.reads_served += 1;
        // Sampling its whole bank costs the TCI real time per sensor —
        // this is the "burdened with many responsibilities" bottleneck.
        env.consume(SimDuration::from_micros(200) * self.probes.len() as u64);
        let now = env.now();
        self.probes
            .iter_mut()
            .filter_map(|(name, probe)| probe.sample(now).ok().map(|m| (name.clone(), m.value)))
            .collect()
    }
}

/// Deploy a TCI with its attached probes.
pub fn deploy_tci(
    env: &mut Env,
    host: HostId,
    name: &str,
    probes: Vec<(String, Box<dyn SensorProbe>)>,
) -> ServiceId {
    env.deploy(
        host,
        name,
        Tci {
            name: name.to_string(),
            probes,
            reads_served: 0,
        },
    )
}

/// Level 2: an SSP collects from its TCIs and structures the data.
pub struct Ssp {
    pub host: HostId,
    tcis: Vec<ServiceId>,
}

impl Ssp {
    /// Pull all readings from every TCI (sequential calls — the original
    /// is a straightforward RMI client).
    fn collect(&mut self, env: &mut Env) -> Result<Vec<(String, f64)>, NetError> {
        let mut out = Vec::new();
        for &tci in &self.tcis {
            let host = self.host;
            let readings = env.call(
                host,
                tci,
                ProtocolStack::Tcp,
                REQUEST_BYTES,
                |env, t: &mut Tci| {
                    let rs = t.collect(env);
                    let bytes = rs.len() * RECORD_BYTES;
                    (rs, bytes.max(8))
                },
            )?;
            out.extend(readings);
        }
        Ok(out)
    }
}

/// Deploy an SSP over the given TCIs.
pub fn deploy_ssp(env: &mut Env, host: HostId, name: &str, tcis: Vec<ServiceId>) -> ServiceId {
    env.deploy(host, name, Ssp { host, tcis })
}

/// Level 3: the ASP, sole access point for applications.
pub struct Asp {
    pub host: HostId,
    ssps: Vec<ServiceId>,
    queries: u64,
}

impl Asp {
    pub fn queries(&self) -> u64 {
        self.queries
    }

    fn collect(&mut self, env: &mut Env) -> Result<Vec<(String, f64)>, NetError> {
        self.queries += 1;
        let mut out = Vec::new();
        for &ssp in &self.ssps {
            let host = self.host;
            let readings = env.call(
                host,
                ssp,
                ProtocolStack::Tcp,
                REQUEST_BYTES,
                |env, s: &mut Ssp| {
                    let rs = s.collect(env);
                    let bytes = rs.as_ref().map_or(8, |r| r.len() * RECORD_BYTES);
                    (rs, bytes.max(8))
                },
            )??;
            out.extend(readings);
        }
        Ok(out)
    }
}

/// Deploy the ASP over the given SSPs.
pub fn deploy_asp(env: &mut Env, host: HostId, name: &str, ssps: Vec<ServiceId>) -> ServiceId {
    env.deploy(
        host,
        name,
        Asp {
            host,
            ssps,
            queries: 0,
        },
    )
}

/// Client-side: fetch all readings through the ASP (the only access
/// point), then post-process *in the application* — the framework itself
/// offers no compute facility (the paper's critique).
pub fn query_all(
    env: &mut Env,
    from: HostId,
    asp: ServiceId,
) -> Result<Vec<(String, f64)>, NetError> {
    env.call(
        from,
        asp,
        ProtocolStack::Tcp,
        REQUEST_BYTES,
        |env, a: &mut Asp| {
            let rs = a.collect(env);
            let bytes = rs.as_ref().map_or(8, |r| r.len() * RECORD_BYTES);
            (rs, bytes.max(8))
        },
    )?
}

/// Network-wide average, computed client-side over a full `query_all`.
pub fn network_average(env: &mut Env, from: HostId, asp: ServiceId) -> Option<f64> {
    let readings = query_all(env, from, asp).ok()?;
    if readings.is_empty() {
        None
    } else {
        Some(readings.iter().map(|(_, v)| v).sum::<f64>() / readings.len() as f64)
    }
}

/// Convenience: build a full three-level deployment. `layout[s][t]` gives
/// the number of sensors on TCI `t` of SSP `s`; each TCI gets its own edge
/// host, each SSP its own server, the ASP one server. Returns
/// (asp service, tci services).
pub fn deploy_three_level(
    env: &mut Env,
    layout: &[Vec<usize>],
    mut make_probe: impl FnMut(&mut Env, usize) -> Box<dyn SensorProbe>,
) -> (ServiceId, Vec<ServiceId>) {
    let mut sensor_idx = 0;
    let mut ssps = Vec::new();
    let mut all_tcis = Vec::new();
    for (s, tcis) in layout.iter().enumerate() {
        let mut tci_ids = Vec::new();
        for (t, &count) in tcis.iter().enumerate() {
            let tci_host = env.add_host(
                format!("tci-{s}-{t}"),
                sensorcer_sim::topology::HostKind::Server,
            );
            let probes: Vec<(String, Box<dyn SensorProbe>)> = (0..count)
                .map(|_| {
                    let p = make_probe(env, sensor_idx);
                    let name = format!("sensor-{sensor_idx:03}");
                    sensor_idx += 1;
                    (name, p)
                })
                .collect();
            tci_ids.push(deploy_tci(env, tci_host, &format!("TCI-{s}-{t}"), probes));
        }
        let ssp_host = env.add_host(
            format!("ssp-{s}"),
            sensorcer_sim::topology::HostKind::Server,
        );
        all_tcis.extend(tci_ids.clone());
        ssps.push(deploy_ssp(env, ssp_host, &format!("SSP-{s}"), tci_ids));
    }
    let asp_host = env.add_host("asp", sensorcer_sim::topology::HostKind::Server);
    let asp = deploy_asp(env, asp_host, "ASP", ssps);
    (asp, all_tcis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorcer_sensors::prelude::*;
    use sensorcer_sim::prelude::*;

    fn probe(v: f64) -> Box<dyn SensorProbe> {
        Box::new(ScriptedProbe::new(vec![v], Unit::Celsius))
    }

    #[test]
    fn three_levels_collect_everything() {
        let mut env = Env::with_seed(1);
        let client = env.add_host("client", HostKind::Workstation);
        let mut next = 0.0;
        let (asp, _tcis) = deploy_three_level(&mut env, &[vec![2, 1], vec![3]], |_e, _i| {
            next += 10.0;
            probe(next)
        });
        let readings = query_all(&mut env, client, asp).unwrap();
        assert_eq!(readings.len(), 6);
        assert_eq!(
            network_average(&mut env, client, asp),
            Some((10.0 + 60.0) * 6.0 / 2.0 / 6.0)
        );
    }

    #[test]
    fn asp_is_the_single_point_of_access_and_failure() {
        let mut env = Env::with_seed(2);
        let client = env.add_host("client", HostKind::Workstation);
        let (asp, _) = deploy_three_level(&mut env, &[vec![2]], |_e, _i| probe(20.0));
        let asp_host = env.service_host(asp).unwrap();
        env.crash_host(asp_host);
        assert!(
            query_all(&mut env, client, asp).is_err(),
            "no ASP, no data — by design"
        );
    }

    #[test]
    fn tci_failure_fails_the_whole_query() {
        // The stack has no failover: a dead TCI breaks its SSP's pull and
        // thus the ASP query (contrast with SenSORCER's leases/provision).
        let mut env = Env::with_seed(3);
        let client = env.add_host("client", HostKind::Workstation);
        let (asp, tcis) = deploy_three_level(&mut env, &[vec![1, 1]], |_e, _i| probe(20.0));
        env.crash_host(env.service_host(tcis[0]).unwrap());
        assert!(query_all(&mut env, client, asp).is_err());
    }

    #[test]
    fn bytes_concentrate_at_the_asp_host() {
        let mut env = Env::with_seed(4);
        let client = env.add_host("client", HostKind::Workstation);
        let (asp, _) = deploy_three_level(&mut env, &[vec![4], vec![4]], |_e, _i| probe(20.0));
        for _ in 0..10 {
            query_all(&mut env, client, asp).unwrap();
        }
        let asp_host = env.service_host(asp).unwrap();
        let asp_bytes = env.metrics.get_host(asp_host, metric_keys::BYTES_WIRE);
        // The ASP re-transmits the entire structured data set per query:
        // it carries more traffic than any single SSP/TCI below it.
        let others: u64 = env
            .metrics
            .hosts_for(metric_keys::BYTES_WIRE)
            .iter()
            .filter(|(h, _)| *h != asp_host && *h != client)
            .map(|(_, b)| *b)
            .max()
            .unwrap_or(0);
        assert!(
            asp_bytes > others,
            "ASP {asp_bytes} should exceed max other {others}"
        );
    }

    #[test]
    fn tci_read_counter_advances() {
        let mut env = Env::with_seed(5);
        let client = env.add_host("client", HostKind::Workstation);
        let (asp, tcis) = deploy_three_level(&mut env, &[vec![2]], |_e, _i| probe(20.0));
        query_all(&mut env, client, asp).unwrap();
        query_all(&mut env, client, asp).unwrap();
        env.with_service(tcis[0], |_e, t: &mut Tci| assert_eq!(t.reads_served(), 2))
            .unwrap();
    }
}
