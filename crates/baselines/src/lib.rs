//! # sensorcer-baselines
//!
//! Comparator implementations for the paper's Related Work section (§III)
//! plus the naive strawman its Motivation section (§II) argues against:
//!
//! * [`direct`] — static per-sensor IP polling (no discovery, no
//!   federation; §II.1–2's pain points made executable);
//! * [`jini3level`] — the three-level TCI/SSP/ASP Jini clustering
//!   framework of Bertocco et al. (§III.A);
//! * [`surrogate`] — the surrogate-architecture framework of Blumenthal
//!   et al. (§III.B), with motes streaming to surrogate objects;
//! * [`scenario`] — a uniform "network-wide average" workload driver that
//!   runs the same aggregation question against all of the above *and*
//!   SenSORCER itself, for the B7 comparison benches.

#![forbid(unsafe_code)]
// Boxed-closure callback signatures (event sinks, 2PC participants,
// simulated parallel branches) trip this lint; the types are the API.
#![allow(clippy::type_complexity)]

pub mod direct;
pub mod jini3level;
pub mod scenario;
pub mod surrogate;

pub use scenario::{all_scenarios, expected_average, RoundResult, Scenario};
