//! Comparable aggregation scenarios across architectures.
//!
//! B7's workload is one question — "average temperature across N sensors,
//! asked repeatedly" — answered by four systems: direct polling, the
//! three-level Jini stack, the surrogate architecture, and SenSORCER
//! (flat CSP). Each scenario owns its own [`Env`] (same seed, same link
//! models, same probe values) and exposes the same `round()` operation so
//! harnesses can sweep them uniformly.

use sensorcer_core::prelude::*;
use sensorcer_sensors::prelude::*;
use sensorcer_sim::prelude::*;

use crate::direct::{deploy_direct_sensor, DirectClient};
use crate::jini3level;
use crate::surrogate;

/// Result of one aggregation round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundResult {
    /// The aggregate (None when the architecture failed to produce one).
    pub value: Option<f64>,
    /// Virtual time the round took, as observed by the client.
    pub latency: SimDuration,
    /// Wire bytes attributable to the round (total across all hosts).
    pub wire_bytes: u64,
}

/// A runnable aggregation scenario.
pub struct Scenario {
    pub name: &'static str,
    env: Env,
    run: Box<dyn FnMut(&mut Env) -> Option<f64>>,
}

impl Scenario {
    /// Execute one aggregation round, measuring latency and bytes.
    pub fn round(&mut self) -> RoundResult {
        let t0 = self.env.now();
        let b0 = self.env.metrics.get(metric_keys::BYTES_WIRE);
        let value = (self.run)(&mut self.env);
        RoundResult {
            value,
            latency: self.env.now() - t0,
            wire_bytes: self.env.metrics.delta(metric_keys::BYTES_WIRE, b0),
        }
    }

    /// Advance background time (streaming baselines accrue cost here).
    pub fn idle(&mut self, d: SimDuration) {
        self.env.run_for(d);
    }

    /// Total wire bytes since the scenario started.
    pub fn total_wire_bytes(&self) -> u64 {
        self.env.metrics.get(metric_keys::BYTES_WIRE)
    }

    pub fn env_mut(&mut self) -> &mut Env {
        &mut self.env
    }
}

/// The common probe bank: constant temperatures 20.0, 20.1, … so every
/// architecture aggregates identical data.
fn probe_value(i: usize) -> f64 {
    20.0 + i as f64 * 0.1
}

fn make_probe(i: usize) -> Box<dyn SensorProbe> {
    Box::new(ScriptedProbe::new(vec![probe_value(i)], Unit::Celsius))
}

/// Expected network-wide average for `n` sensors (for correctness checks).
pub fn expected_average(n: usize) -> f64 {
    (0..n).map(probe_value).sum::<f64>() / n as f64
}

/// Direct per-sensor polling over TCP.
pub fn direct_scenario(n: usize, seed: u64) -> Scenario {
    let mut env = Env::with_seed(seed);
    let client_host = env.add_host("client", HostKind::Workstation);
    let mut client = DirectClient::new(client_host, ProtocolStack::Tcp);
    for i in 0..n {
        let mote = env.add_host(format!("mote{i}"), HostKind::SensorMote);
        client.sensors.push(deploy_direct_sensor(
            &mut env,
            mote,
            &format!("s{i}"),
            make_probe(i),
        ));
    }
    Scenario {
        name: "direct-polling",
        env,
        run: Box::new(move |env| client.network_average(env)),
    }
}

/// Three-level TCI/SSP/ASP stack; sensors split across two SSPs with
/// TCIs of up to 8 sensors.
pub fn three_level_scenario(n: usize, seed: u64) -> Scenario {
    let mut env = Env::with_seed(seed);
    let client = env.add_host("client", HostKind::Workstation);
    // Layout: fill TCIs of 8, split across 2 SSPs.
    let tci_count = n.div_ceil(8).max(1);
    let mut layout = vec![Vec::new(), Vec::new()];
    let mut remaining = n;
    for t in 0..tci_count {
        let take = remaining.min(8);
        layout[t % 2].push(take);
        remaining -= take;
    }
    layout.retain(|l| !l.is_empty());
    let (asp, _tcis) = jini3level::deploy_three_level(&mut env, &layout, |_e, i| make_probe(i));
    Scenario {
        name: "three-level-jini",
        env,
        run: Box::new(move |env| jini3level::network_average(env, client, asp)),
    }
}

/// Surrogate architecture: nodes stream at 1 Hz; queries accept data up to
/// 5 s old.
pub fn surrogate_scenario(n: usize, seed: u64) -> Scenario {
    let mut env = Env::with_seed(seed);
    let server = env.add_host("surrogate-host", HostKind::Server);
    let client = env.add_host("client", HostKind::Workstation);
    let host_svc = surrogate::deploy_surrogate_host(&mut env, server, "Surrogate Host");
    for i in 0..n {
        let mote = env.add_host(format!("mote{i}"), HostKind::SensorMote);
        surrogate::attach_node(
            &mut env,
            mote,
            &format!("node{i}"),
            make_probe(i),
            host_svc,
            SimDuration::from_secs(1),
        );
    }
    // Warm the cache so the first query sees data. Several periods, so a
    // single lost radio frame cannot leave a node unrepresented.
    env.run_for(SimDuration::from_secs(5));
    Scenario {
        name: "surrogate",
        env,
        run: Box::new(move |env| {
            surrogate::network_average(env, client, host_svc, SimDuration::from_secs(5))
        }),
    }
}

/// SenSORCER: one flat CSP averaging all ESPs, read through the federated
/// path (bind via LUS, parallel child reads).
pub fn sensorcer_scenario(n: usize, seed: u64) -> Scenario {
    let mut env = Env::with_seed(seed);
    let lab = env.add_host("lab", HostKind::Server);
    let client = env.add_host("client", HostKind::Workstation);
    let lus = sensorcer_registry::lus::LookupService::deploy(
        &mut env,
        lab,
        "LUS",
        "public",
        sensorcer_registry::lease::LeasePolicy {
            max_duration: SimDuration::from_secs(36_000),
            default_duration: SimDuration::from_secs(3_600),
        },
        SimDuration::from_secs(1),
    );
    for i in 0..n {
        let mote = env.add_host(format!("mote{i}"), HostKind::SensorMote);
        deploy_esp(
            &mut env,
            EspConfig {
                lease: SimDuration::from_secs(3_600),
                ..EspConfig::new(mote, format!("Sensor-{i:03}"), make_probe(i), lus)
            },
        );
    }
    let mut cfg = CspConfig::new(lab, "Network-Average", lus);
    cfg.lease = SimDuration::from_secs(3_600);
    cfg.children = (0..n).map(|i| format!("Sensor-{i:03}")).collect();
    // lint:allow(unwrap): static scenario composite is known-valid
    deploy_csp(&mut env, cfg).expect("valid composite");
    let accessor = sensorcer_exertion::ServiceAccessor::new(vec![lus]);
    Scenario {
        name: "sensorcer-csp",
        env,
        run: Box::new(move |env| {
            client::get_value(env, client, &accessor, "Network-Average")
                .ok()
                .map(|r| r.value)
        }),
    }
}

/// All four scenarios for a given size.
pub fn all_scenarios(n: usize, seed: u64) -> Vec<Scenario> {
    vec![
        direct_scenario(n, seed),
        three_level_scenario(n, seed),
        surrogate_scenario(n, seed),
        sensorcer_scenario(n, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_architecture_computes_the_same_average() {
        let n = 12;
        let want = expected_average(n);
        for mut s in all_scenarios(n, 7) {
            let r = s.round();
            let got = r.value.unwrap_or(f64::NAN);
            assert!(
                (got - want).abs() < 1e-9,
                "{}: got {got}, want {want}",
                s.name
            );
            assert!(
                r.latency > SimDuration::ZERO,
                "{}: rounds take time",
                s.name
            );
            assert!(r.wire_bytes > 0, "{}: rounds cost bytes", s.name);
        }
    }

    #[test]
    fn surrogate_queries_are_cheapest_per_round_but_stream_in_idle() {
        let n = 16;
        let mut surrogate = surrogate_scenario(n, 7);
        let mut direct = direct_scenario(n, 7);
        let rs = surrogate.round();
        let rd = direct.round();
        assert!(
            rs.wire_bytes < rd.wire_bytes / 4,
            "surrogate round {} vs direct {}",
            rs.wire_bytes,
            rd.wire_bytes
        );
        // But idle time costs the surrogate network bytes, the poller none.
        let s0 = surrogate.total_wire_bytes();
        let d0 = direct.total_wire_bytes();
        surrogate.idle(SimDuration::from_secs(60));
        direct.idle(SimDuration::from_secs(60));
        assert!(surrogate.total_wire_bytes() > s0 + 1000);
        assert_eq!(direct.total_wire_bytes(), d0);
    }

    #[test]
    fn sensorcer_round_beats_sequential_polling_latency_at_scale() {
        let n = 32;
        let mut ours = sensorcer_scenario(n, 7);
        let mut direct = direct_scenario(n, 7);
        // Skip first round (cold caches equal for both anyway) and measure.
        let r_ours = ours.round();
        let r_direct = direct.round();
        assert!(
            r_ours.latency < r_direct.latency,
            "parallel federation {} should beat sequential polling {}",
            r_ours.latency,
            r_direct.latency
        );
    }
}
